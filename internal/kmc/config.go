// Package kmc implements the atomistic Kinetic Monte Carlo engine that
// continues the damage simulation after MD: vacancies hop between lattice
// sites with rates k = ν·exp(-ΔE/kBT) derived from the EAM potential
// (paper §2.2), parallelized with the semirigorous synchronous sublattice
// method (8 sectors per subdomain) and either the traditional full-ghost
// exchange of SPPARKS/KMCLib or the paper's on-demand communication
// strategy (§2.2.1), in both its two-sided (probe) and one-sided (window)
// realizations.
package kmc

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"mdkmc/internal/eam"
	"mdkmc/internal/lattice"
	"mdkmc/internal/units"
)

// Protocol selects the ghost-synchronization strategy.
type Protocol int

// Protocols compared in the paper's Figures 12 and 13.
const (
	// Traditional exchanges the complete ghost region before and after
	// every sector (the SPPARKS/KMCLib static pattern).
	Traditional Protocol = iota
	// OnDemand sends only the sites actually affected by events, using
	// two-sided messages discovered with Probe; idle neighbors still send
	// zero-size messages so receives match.
	OnDemand
	// OnDemandOneSided sends affected sites through one-sided window puts,
	// eliminating the zero-size messages.
	OnDemandOneSided
)

func (p Protocol) String() string {
	switch p {
	case Traditional:
		return "traditional"
	case OnDemand:
		return "on-demand"
	case OnDemandOneSided:
		return "on-demand-1sided"
	}
	return fmt.Sprintf("Protocol(%d)", int(p))
}

// Config describes a KMC run.
type Config struct {
	Cells [3]int
	//mdvet:hashexempt topology knob (DESIGN.md §14): recorded in the manifest and re-sharded on restart, not part of the physical run
	Grid [3]int
	// Cuts, when a dimension is non-nil, are explicit slab boundaries of the
	// process grid (lattice.NewGridCuts) — set by the repartitioner to
	// concentrate ranks on the defect-dense region. A topology knob like
	// Grid, excluded from Hash.
	//mdvet:hashexempt topology knob (DESIGN.md §14): re-shard loader handles boundary changes, trajectory is unchanged
	Cuts [3][]int
	A    float64

	Temperature float64 // K
	Nu          float64 // attempt frequency (1/s)
	Em          float64 // reference migration barrier (eV)

	// VacancyConcentration places vacancies at random lattice sites at
	// initialization (ignored when Vacancies is non-nil). The paper uses
	// 4.5e-5 and 2e-6.
	VacancyConcentration float64
	// Vacancies, when non-nil, lists the global site indices that start as
	// vacancies — the MD→KMC coupling input.
	Vacancies []int

	// CuConcentration places substitutional copper solutes at random sites
	// (the alloy path; enables the Cu-precipitation scenario).
	CuConcentration float64
	// CuSites, when non-nil, lists explicit copper site indices.
	CuSites []int
	// EmCu is the migration barrier of a vacancy-Cu exchange (eV); when
	// zero, Em is used. Copper migrates faster than iron in α-Fe, which is
	// what lets it precipitate on vacancy timescales.
	EmCu float64

	Seed uint64
	//mdvet:hashexempt bit-identical communication knob (DESIGN.md §7): all three ghost protocols yield the same trajectory
	Protocol Protocol

	// FullRescan disables the incremental event-rate cache and re-enumerates
	// every candidate hop from scratch at each selection — the slow
	// reference mode the equivalence tests and benchmarks compare against.
	// The environment variable MDKMC_KMC_FULL_RESCAN=1 forces it on without
	// a config change. Trajectories are bit-identical either way.
	//mdvet:hashexempt bit-identical reference mode (DESIGN.md §8): the rescan cache changes speed, never the trajectory
	FullRescan bool

	// DtFactor scales the synchronous cycle window dt = DtFactor / R_max;
	// ~1 event per subdomain per cycle at the default of 1.
	DtFactor float64
}

// DefaultConfig returns the paper's KMC setup at laptop scale.
func DefaultConfig() Config {
	return Config{
		Cells:                [3]int{12, 12, 12},
		Grid:                 [3]int{1, 1, 1},
		A:                    units.LatticeConstantFe,
		Temperature:          600,
		Nu:                   units.AttemptFrequency,
		Em:                   units.VacancyMigrationEnergyFe,
		VacancyConcentration: 4.5e-5,
		Seed:                 1,
		Protocol:             OnDemand,
		DtFactor:             1,
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	for d := 0; d < 3; d++ {
		if c.Cells[d] <= 0 || c.Grid[d] <= 0 {
			return fmt.Errorf("kmc: non-positive cells %v or grid %v", c.Cells, c.Grid)
		}
	}
	if c.A <= 0 {
		return fmt.Errorf("kmc: non-positive lattice constant")
	}
	if c.Temperature <= 0 {
		return fmt.Errorf("kmc: non-positive temperature")
	}
	if c.Nu <= 0 || c.Em <= 0 {
		return fmt.Errorf("kmc: non-positive rate parameters nu=%v em=%v", c.Nu, c.Em)
	}
	if c.VacancyConcentration < 0 || c.VacancyConcentration > 0.5 {
		return fmt.Errorf("kmc: vacancy concentration %v out of range", c.VacancyConcentration)
	}
	if c.CuConcentration < 0 || c.CuConcentration > 0.5 {
		return fmt.Errorf("kmc: copper concentration %v out of range", c.CuConcentration)
	}
	if c.EmCu < 0 {
		return fmt.Errorf("kmc: negative copper migration barrier %v", c.EmCu)
	}
	if c.DtFactor <= 0 {
		return fmt.Errorf("kmc: non-positive dt factor")
	}
	return nil
}

// Hash returns a short stable digest of every trajectory-determining
// field. Checkpoint manifests record it so a restart with a diverging
// configuration is refused instead of silently producing a different
// trajectory. Protocol and FullRescan are excluded: both are documented
// bit-identical knobs (DESIGN.md §7/§8), so a run may legally resume under
// a different communication protocol or rescan mode. Grid and Cuts are also
// excluded (DESIGN.md §14): topology is restart-compatible-but-checked —
// recorded in the checkpoint manifest and handled by the re-shard loader
// rather than refused. The explicit Vacancies/CuSites lists are hashed in
// full — they seed the occupancy.
func (c *Config) Hash() string {
	s := fmt.Sprintf("kmc|cells=%v|a=%v|T=%v|nu=%v|em=%v|cv=%v|vac=%v|cuc=%v|cusites=%v|emcu=%v|seed=%d|dtf=%v",
		c.Cells, c.A, c.Temperature, c.Nu, c.Em,
		c.VacancyConcentration, c.Vacancies, c.CuConcentration, c.CuSites,
		c.EmCu, c.Seed, c.DtFactor)
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:8])
}

// Ranks returns the process count the configuration requires.
func (c *Config) Ranks() int { return c.Grid[0] * c.Grid[1] * c.Grid[2] }

// GhostWidth returns the ghost-halo width in cells a State built from this
// configuration uses — also the minimum slab width of any legal
// decomposition (NewState refuses thinner subdomains), which topology
// choosers must respect when picking a grid for elastic restart.
func (c *Config) GhostWidth() int {
	var pot *eam.Potential
	if c.CuConcentration > 0 || len(c.CuSites) > 0 {
		pot = eam.NewFeCu(eam.Compacted, eam.TablePoints)
	} else {
		pot = eam.NewFe(eam.Compacted, eam.TablePoints)
	}
	l := lattice.New(c.Cells[0], c.Cells[1], c.Cells[2], c.A)
	return 2*l.NeighborOffsets(pot.Cutoff).MaxCellReach() + 1
}

// NumSites returns the number of lattice sites.
func (c *Config) NumSites() int { return 2 * c.Cells[0] * c.Cells[1] * c.Cells[2] }
