package kmc

import (
	"math"
	"sort"

	"mdkmc/internal/eam"
	"mdkmc/internal/lattice"
	"mdkmc/internal/units"
)

// Occupancy codes. KMC is on-lattice: every site is a vacancy or an atom of
// one of the supported species (the AKMC "sites" of the paper; Cu enables
// the alloy path and the copper-precipitation scenario).
const (
	Vacant uint8 = 0
	Atom   uint8 = 1 // iron
	CuAtom uint8 = 2 // copper
)

// numSpecies is the number of occupancy codes (including Vacant).
const numSpecies = 3

// elementOf maps an occupancy code to its element; only valid for atoms.
func elementOf(occ uint8) units.Element {
	if occ == CuAtom {
		return units.Cu
	}
	return units.Fe
}

// shellTables holds the EAM pair and density values precomputed per offset
// of the neighbor table — the on-lattice specialization: atoms sit on ideal
// sites, so only a handful of distinct separations occur and every table
// query collapses to an indexed load ("#3: Compute EAM potential for each
// atom" at on-lattice cost).
//
// The pair term depends on both species; in the Finnis-Sinclair form the
// density contribution depends only on the source species, which is what
// keeps the incremental ρ maintenance simple.
type shellTables struct {
	tab *lattice.OffsetTable
	// phi[a][b][basis][k]: pair energy between species codes a and b at
	// offset k from a central site of the given basis.
	phi [numSpecies][numSpecies][2][]float64
	// f[src][basis][k]: density contributed by a source atom of the given
	// species code.
	f [numSpecies][2][]float64
}

func newShellTables(pot *eam.Potential, tab *lattice.OffsetTable) *shellTables {
	st := &shellTables{tab: tab}
	species := []uint8{Atom}
	for _, e := range pot.Elements {
		if e == units.Cu {
			species = append(species, CuAtom)
		}
	}
	for b := 0; b < 2; b++ {
		offs := tab.PerBase[b]
		for _, sa := range species {
			st.f[sa][b] = make([]float64, len(offs))
			for _, sb := range species {
				st.phi[sa][sb][b] = make([]float64, len(offs))
			}
		}
		for k, o := range offs {
			for _, sa := range species {
				fv, _ := pot.Density(units.Fe, elementOf(sa), o.R)
				st.f[sa][b][k] = fv
				for _, sb := range species {
					pv, _ := pot.Pair(elementOf(sa), elementOf(sb), o.R)
					st.phi[sa][sb][b][k] = pv
				}
			}
		}
	}
	return st
}

// fval returns the density contribution of a source site with the given
// occupancy code at offset k (zero for vacancies and for species the
// potential was not built with).
func (st *shellTables) fval(occ uint8, basis, k int) float64 {
	f := st.f[occ][basis]
	if f == nil {
		return 0
	}
	return f[k]
}

// energetics evaluates swap energy differences over the occupancy state.
type energetics struct {
	pot    *eam.Potential
	shells *shellTables
}

// embed returns F_a(ρ) for an atom of species code a.
func (e *energetics) embed(a uint8, rho float64) float64 {
	v, _ := e.pot.Embed(elementOf(a), rho)
	return v
}

// swapDeltaE returns the total-energy change of moving the atom at site n
// into the vacancy at site s (both given as local indices with their lattice
// coordinates). occ and rho are the current local state; rho must be valid
// for every site within the interaction cutoff of s or n.
//
// Only s and n change occupancy, so with the moving atom's species m:
//
//	ΔE_pair  = Σ_j φ_{m,tj}(r_sj) − Σ_j φ_{m,tj}(r_nj)   (j ≠ s,n occupied)
//	ΔE_embed = Σ_i [F_{ti}(ρ_i ± f_m) − F_{ti}(ρ_i)]     (i occupied near s or n)
//	         + F_m(ρ'_atom at s) − F_m(ρ_atom at n)
func (e *energetics) swapDeltaE(st *State, s, n int, cs, cn lattice.Coord) float64 {
	occ, rho := st.Occ, st.Rho
	m := occ[n] // species of the moving atom

	var dPair float64
	// Pair sums around the destination s (gains) and origin n (losses).
	for k, d := range st.deltas[cs.B] {
		j := s + int(d)
		if j != n && occ[j] != Vacant {
			dPair += e.shells.phi[m][occ[j]][cs.B][k]
		}
	}
	for k, d := range st.deltas[cn.B] {
		j := n + int(d)
		if j != s && occ[j] != Vacant {
			dPair -= e.shells.phi[m][occ[j]][cn.B][k]
		}
	}

	// Embedding changes of the bystanders: every occupied site i near s
	// gains f_m(r_is); every occupied site i near n loses f_m(r_in).
	// Collect the deltas first because a site can neighbor both.
	type bump struct {
		site  int
		delta float64
	}
	bumps := make([]bump, 0, 128)
	fm := e.shells.f[m]
	for k, d := range st.deltas[cs.B] {
		j := s + int(d)
		if j != n && occ[j] != Vacant {
			bumps = append(bumps, bump{j, fm[cs.B][k]})
		}
	}
	for k, d := range st.deltas[cn.B] {
		j := n + int(d)
		if j != s && occ[j] != Vacant {
			bumps = append(bumps, bump{j, -fm[cn.B][k]})
		}
	}
	// Merge duplicates (sites near both s and n) in deterministic site
	// order, so the floating-point sum is reproducible across protocols.
	sort.Slice(bumps, func(i, j int) bool { return bumps[i].site < bumps[j].site })
	var dEmbed float64
	for i := 0; i < len(bumps); {
		site := bumps[i].site
		delta := 0.0
		for ; i < len(bumps) && bumps[i].site == site; i++ {
			delta += bumps[i].delta
		}
		if delta != 0 {
			dEmbed += e.embed(occ[site], rho[site]+delta) - e.embed(occ[site], rho[site])
		}
	}

	// The moving atom itself: before, embedded at n; after, at s with n
	// vacated. Density contributions depend on the *sources* around it.
	rhoBefore := rho[n] // ρ at n excludes n itself by construction
	rhoAfter := 0.0
	for k, d := range st.deltas[cs.B] {
		j := s + int(d)
		if j != n && occ[j] != Vacant {
			rhoAfter += e.shells.f[occ[j]][cs.B][k]
		}
	}
	dEmbed += e.embed(m, rhoAfter) - e.embed(m, rhoBefore)
	return dPair + dEmbed
}

// dependencyReach returns the Chebyshev cell radius within which an
// occupancy change can alter the outcome of swapDeltaE for a vacancy — the
// exact invalidation radius of the incremental event-rate cache. The hop
// target sits one cell from the vacancy; the phi pair shells and the
// embedding bystanders extend another `reach` cells (occupancy read
// directly, radius reach+1); and each bystander's ρ sums occupancy a
// further `reach` cells out (radius 2*reach+1, the ghost width). The
// maximum, 2*reach+1, is therefore both necessary and sufficient.
func (e *energetics) dependencyReach(reach int) int { return 2*reach + 1 }

// hopRate returns the transition rate of a hop with energy difference dE,
// using the kinetically-resolved activation barrier ΔE* = Em + dE/2,
// floored at a small positive value so rates stay finite and positive.
func hopRate(nu, em, kBT, dE float64) float64 {
	barrier := em + dE/2
	if barrier < 0.01 {
		barrier = 0.01
	}
	return nu * math.Exp(-barrier/kBT)
}
