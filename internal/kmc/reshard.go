package kmc

import (
	"encoding/gob"
	"fmt"
	"io"

	"mdkmc/internal/lattice"
)

// ShardSource describes where an M-rank KMC checkpoint came from: the source
// decomposition and a way to open each source rank's shard.
type ShardSource struct {
	Grid *lattice.Grid
	Open func(rank int) (io.ReadCloser, error)
}

// RestoreResharded loads a checkpoint written by an M-rank decomposition
// into a state of an N-rank decomposition of the same physical run. Every
// target rank scans all M source shards in rank order and writes the
// occupancy of each source-owned site into its own local images (owned and
// halo), then recomputes the electron densities from scratch and rebuilds
// the vacancy index. The clock is carried over; the cumulative per-rank
// event counters, which have no meaningful per-rank identity under a new
// decomposition, are summed onto rank 0 so the reported global total is
// preserved exactly. Restarts onto the source topology itself should use
// Restore, which is byte-exact; under a new topology the defect population
// is preserved exactly while the continued trajectory follows the new
// decomposition's (seed, rank, cycle, sector) RNG streams. Collective:
// every target rank must call it.
func (st *State) RestoreResharded(src ShardSource) error {
	if src.Grid == nil || src.Open == nil {
		return fmt.Errorf("kmc: reshard source missing grid or shard opener")
	}
	if src.Grid.L.Nx != st.L.Nx || src.Grid.L.Ny != st.L.Ny || src.Grid.L.Nz != st.L.Nz {
		return fmt.Errorf("kmc: reshard source lattice %dx%dx%d, want %dx%dx%d",
			src.Grid.L.Nx, src.Grid.L.Ny, src.Grid.L.Nz, st.L.Nx, st.L.Ny, st.L.Nz)
	}

	// Drop the initialization occupancy: every site is re-derived from the
	// shards (sites outside every source-owned region cannot exist — the
	// boxes partition the lattice).
	for i := range st.Occ {
		st.Occ[i] = Atom
	}

	covered := 0
	time, cycles, events := 0.0, -1, 0
	for s := 0; s < src.Grid.Ranks(); s++ {
		cp, err := st.readShard(src, s)
		if err != nil {
			return err
		}
		if cycles == -1 {
			time, cycles = cp.Time, cp.Cycles
		} else if cp.Cycles != cycles || cp.Time != time {
			return fmt.Errorf("kmc: shard %d at cycle %d t=%v, shard 0 at cycle %d t=%v",
				s, cp.Cycles, cp.Time, cycles, time)
		}
		events += cp.Events
		srcBox := src.Grid.Box(s, 2*st.reach+1)
		if want := srcBox.NumLocalSites(); len(cp.Occ) != want {
			return fmt.Errorf("kmc: shard %d has %d sites, source box has %d", s, len(cp.Occ), want)
		}
		srcBox.EachOwned(func(c lattice.Coord, srcLocal int) {
			covered++
			occ := cp.Occ[srcLocal]
			key := st.cellKey(c.X, c.Y, c.Z)
			base, ok := st.wrapped[key]
			if !ok {
				return // outside my local region
			}
			for _, member := range st.imageBases(base) {
				st.Occ[member+int(c.B)] = occ
			}
		})
	}
	if covered != st.L.NumSites() {
		return fmt.Errorf("kmc: reshard covered %d of %d sites — source boxes do not partition the lattice",
			covered, st.L.NumSites())
	}
	st.Time = time
	st.Cycles = cycles
	if st.Comm.Rank() == 0 {
		st.Events = events
	} else {
		st.Events = 0
	}
	st.initRho()
	st.rebuildVacancyIndex()
	return nil
}

// SetClock overwrites the accumulated clock, cycle count and cumulative
// event counter — used by the rebalance handoff, which rebuilds the State
// on a new decomposition mid-run and carries the old clock forward so the
// continued trajectory's (seed, rank, cycle, sector) RNG streams line up.
func (st *State) SetClock(time float64, cycles, events int) {
	st.Time = time
	st.Cycles = cycles
	st.Events = events
}

// readShard opens, decodes and validates one source shard.
func (st *State) readShard(src ShardSource, rank int) (*checkpoint, error) {
	rd, err := src.Open(rank)
	if err != nil {
		return nil, fmt.Errorf("kmc: opening shard %d: %w", rank, err)
	}
	defer rd.Close()
	var cp checkpoint
	if err := gob.NewDecoder(rd).Decode(&cp); err != nil {
		return nil, fmt.Errorf("kmc: decoding shard %d: %w", rank, err)
	}
	if cp.Version != checkpointVersion {
		return nil, fmt.Errorf("kmc: shard %d version %d, want %d", rank, cp.Version, checkpointVersion)
	}
	if cp.Rank != rank {
		return nil, fmt.Errorf("kmc: shard %d claims rank %d", rank, cp.Rank)
	}
	return &cp, nil
}
