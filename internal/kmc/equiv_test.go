package kmc

import (
	"fmt"
	"testing"

	"mdkmc/internal/lattice"
	"mdkmc/internal/mpi"
	"mdkmc/internal/rng"
)

// trajectory captures everything the incremental-vs-rescan equivalence
// asserts: the merged occupancy snapshot, total executed events, and the
// Monte Carlo clock.
type trajectory struct {
	snap   map[int]uint8
	events int
	time   float64
}

// runTrajectory executes cycles KMC cycles across cfg.Ranks() ranks and
// merges the per-rank results.
func runTrajectory(t *testing.T, cfg Config, cycles int) trajectory {
	t.Helper()
	tr := trajectory{snap: make(map[int]uint8)}
	mu := make(chan struct{}, 1)
	mu <- struct{}{}
	w := mpi.NewWorld(cfg.Ranks())
	w.Run(func(c *mpi.Comm) {
		st, err := NewState(cfg, c)
		if err != nil {
			panic(err)
		}
		events := 0
		for i := 0; i < cycles; i++ {
			events += st.Cycle()
		}
		snap := st.Snapshot()
		<-mu
		for k, v := range snap {
			tr.snap[k] = v
		}
		tr.events += events
		tr.time = st.Time
		mu <- struct{}{}
	})
	return tr
}

// TestIncrementalMatchesRescan is the tentpole equivalence property: with
// the event-rate cache on, trajectories (snapshot, event count, clock) are
// bit-identical to the full-rescan reference, over multi-rank runs, every
// protocol, and both the Fe and Fe-Cu systems.
func TestIncrementalMatchesRescan(t *testing.T) {
	type variant struct {
		name  string
		cells [3]int
		grid  [3]int
		proto Protocol
		alloy bool
	}
	variants := []variant{
		{"2x2x1-traditional-Fe", [3]int{22, 22, 11}, [3]int{2, 2, 1}, Traditional, false},
		{"2x2x1-ondemand-Fe", [3]int{22, 22, 11}, [3]int{2, 2, 1}, OnDemand, false},
		{"2x2x1-1sided-Fe", [3]int{22, 22, 11}, [3]int{2, 2, 1}, OnDemandOneSided, false},
		{"2x2x1-ondemand-FeCu", [3]int{22, 22, 11}, [3]int{2, 2, 1}, OnDemand, true},
		{"2x2x1-traditional-FeCu", [3]int{22, 22, 11}, [3]int{2, 2, 1}, Traditional, true},
		{"2x2x2-ondemand-Fe", [3]int{22, 22, 22}, [3]int{2, 2, 2}, OnDemand, false},
		{"2x2x2-traditional-Fe", [3]int{22, 22, 22}, [3]int{2, 2, 2}, Traditional, false},
	}
	const cycles = 50
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Cells = v.cells
			cfg.Grid = v.grid
			cfg.Protocol = v.proto
			cfg.VacancyConcentration = 1e-3
			if v.alloy {
				cfg.CuConcentration = 0.02
				cfg.EmCu = 0.55
			}
			cfg.FullRescan = false
			inc := runTrajectory(t, cfg, cycles)
			cfg.FullRescan = true
			ref := runTrajectory(t, cfg, cycles)

			if inc.events != ref.events {
				t.Errorf("event counts differ: incremental %d, rescan %d", inc.events, ref.events)
			}
			if inc.time != ref.time {
				t.Errorf("clocks differ: incremental %v, rescan %v", inc.time, ref.time)
			}
			if len(inc.snap) != len(ref.snap) {
				t.Fatalf("snapshot sizes differ: %d vs %d", len(inc.snap), len(ref.snap))
			}
			diff := 0
			for k, occ := range ref.snap {
				if inc.snap[k] != occ {
					diff++
				}
			}
			if diff != 0 {
				t.Errorf("snapshots differ at %d sites", diff)
			}
		})
	}
}

// TestSectorTotalsMatchRescanAfterRandomUpdates is the cache-coherence
// property test: after arbitrary occupancy writes (standing in for hop
// applications and incoming ghost records), the cached per-sector totals
// must equal a fresh sectorEvents enumeration bit-for-bit.
func TestSectorTotalsMatchRescanAfterRandomUpdates(t *testing.T) {
	for _, alloy := range []bool{false, true} {
		alloy := alloy
		t.Run(fmt.Sprintf("alloy-%v", alloy), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Cells = [3]int{12, 12, 12}
			cfg.VacancyConcentration = 0.002
			if alloy {
				cfg.CuConcentration = 0.02
				cfg.EmCu = 0.55
			}
			runWorld(t, cfg, func(st *State) {
				// Warm the cache, then perturb and recheck several rounds.
				src := rng.New(99)
				species := []uint8{Vacant, Atom, CuAtom}
				if !alloy {
					species = []uint8{Vacant, Atom}
				}
				for round := 0; round < 20; round++ {
					for sec := 0; sec < 8; sec++ {
						_, want := st.sectorEvents(sec)
						if got := st.sectorRate(sec); got != want {
							t.Fatalf("round %d sector %d: cached total %v, rescan %v",
								round, sec, got, want)
						}
					}
					// Random writes anywhere in the local region, including
					// the halo (the ghost-update path).
					for i := 0; i < 6; i++ {
						local := src.Intn(len(st.Occ))
						st.setOcc(local, species[src.Intn(len(species))], false)
					}
				}
			})
		})
	}
}

// TestVacancyIndexConsistent asserts the per-sector selection lists stay in
// lockstep with the owned-vacancy set through cycles and random writes.
func TestVacancyIndexConsistent(t *testing.T) {
	cfg := testConfig()
	runWorld(t, cfg, func(st *State) {
		check := func(when string) {
			n := 0
			for sec := 0; sec < 8; sec++ {
				prev := -1
				for _, v := range st.secVacs[sec] {
					if v <= prev {
						t.Fatalf("%s: sector %d list not strictly ascending", when, sec)
					}
					prev = v
					if !st.ownedVac[v] {
						t.Fatalf("%s: sector %d lists non-vacancy %d", when, sec, v)
					}
					if st.rateCache[v] == nil {
						t.Fatalf("%s: vacancy %d has no cache entry", when, v)
					}
					if got := st.sectorOf(st.Box.GlobalCoord(v)); got != sec {
						t.Fatalf("%s: vacancy %d filed under sector %d, is %d", when, v, sec, got)
					}
					n++
				}
			}
			if n != len(st.ownedVac) {
				t.Fatalf("%s: %d listed vacancies, %d owned", when, n, len(st.ownedVac))
			}
			if len(st.rateCache) != len(st.ownedVac) {
				t.Fatalf("%s: %d cache entries, %d owned vacancies", when, len(st.rateCache), len(st.ownedVac))
			}
		}
		check("after init")
		for i := 0; i < 10; i++ {
			st.Cycle()
		}
		check("after cycles")
		// Direct writes through the ghost-update path.
		st.Box.EachOwned(func(_ lattice.Coord, local int) {
			if local%97 == 0 {
				st.setOcc(local, Vacant, false)
			}
		})
		check("after forced vacancies")
	})
}
