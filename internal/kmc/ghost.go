package kmc

import (
	"encoding/binary"
	"fmt"
	"sort"

	"mdkmc/internal/lattice"
	"mdkmc/internal/mpi"
)

// Message tags of the KMC protocols.
const (
	tagKReq = iota + 200
	tagKGet
	tagKPut
	tagKDirty
)

// vacancySeedSalt derives the vacancy-placement RNG stream.
const vacancySeedSalt = 0xFACC

// packer/unpacker: minimal little-endian serialization for the KMC wire
// formats (cell coordinates, occupancy bytes).
type packer struct{ buf []byte }

func (p *packer) u8(v uint8) { p.buf = append(p.buf, v) }
func (p *packer) i32(v int32) {
	p.buf = binary.LittleEndian.AppendUint32(p.buf, uint32(v))
}

type unpacker struct {
	buf []byte
	off int
}

// need guards every read: a truncated ghost message must fail as a
// descriptive kmc error (which the mpi runtime converts into a RankPanic
// the caller can report), not a raw slice-bounds panic.
func (u *unpacker) need(n int, what string) {
	if u.off+n > len(u.buf) {
		//mdvet:panics the mpi runtime converts rank panics into RankPanic errors, so this fails the job, not the process
		panic(fmt.Errorf("kmc: truncated ghost message: need %d byte(s) for %s at offset %d of %d",
			n, what, u.off, len(u.buf)))
	}
}

func (u *unpacker) u8() uint8 {
	u.need(1, "occupancy/basis byte")
	v := u.buf[u.off]
	u.off++
	return v
}
func (u *unpacker) i32() int32 {
	u.need(4, "coordinate word")
	v := binary.LittleEndian.Uint32(u.buf[u.off:])
	u.off += 4
	return int32(v)
}
func (u *unpacker) done() bool { return u.off >= len(u.buf) }

// exchangeGetSector refreshes the read halo of sector sec from the owning
// ranks — the first half of the traditional protocol (paper Figure 8(b)).
// The complete halo band travels regardless of what actually changed; that
// redundancy is precisely what Figure 12 measures.
func (st *State) exchangeGetSector(sec int) {
	for _, peer := range st.peers {
		cells := st.getSend[sec][peer]
		if len(cells) == 0 {
			continue
		}
		var p packer
		for _, base := range cells {
			p.u8(st.Occ[base])
			p.u8(st.Occ[base+1])
		}
		st.Comm.Send(peer, tagKGet, p.buf)
		st.tel.bandBytes.Add(int64(len(p.buf)))
	}
	for _, peer := range st.peers {
		cells := st.getRecv[sec][peer]
		if len(cells) == 0 {
			continue
		}
		data, _ := st.Comm.Recv(peer, tagKGet)
		u := unpacker{buf: data}
		for _, base := range cells {
			st.setOcc(base, u.u8(), false)
			st.setOcc(base+1, u.u8(), false)
		}
		if !u.done() {
			//mdvet:panics ghost-protocol invariant in the hot exchange path; recovered as a RankPanic job error
			panic(fmt.Errorf("kmc: %d trailing byte(s) in sector ghost get from rank %d",
				len(u.buf)-u.off, peer))
		}
	}
}

// exchangePutSector pushes the one-cell write band of sector sec back to the
// owners — the second half of the traditional protocol (Figure 8(c)). Only
// the active sector's band travels, so no two ranks write the same cell in
// the same phase (the synchronous-sublattice separation property).
func (st *State) exchangePutSector(sec int) {
	for _, peer := range st.peers {
		cells := st.putSend[sec][peer]
		if len(cells) == 0 {
			continue
		}
		var p packer
		for _, base := range cells {
			p.u8(st.Occ[base])
			p.u8(st.Occ[base+1])
		}
		st.Comm.Send(peer, tagKPut, p.buf)
		st.tel.bandBytes.Add(int64(len(p.buf)))
	}
	for _, peer := range st.peers {
		cells := st.putRecv[sec][peer]
		if len(cells) == 0 {
			continue
		}
		data, _ := st.Comm.Recv(peer, tagKPut)
		u := unpacker{buf: data}
		for _, base := range cells {
			st.setOcc(base, u.u8(), false)
			st.setOcc(base+1, u.u8(), false)
		}
		if !u.done() {
			//mdvet:panics ghost-protocol invariant in the hot exchange path; recovered as a RankPanic job error
			panic(fmt.Errorf("kmc: %d trailing byte(s) in sector ghost put from rank %d",
				len(u.buf)-u.off, peer))
		}
	}
}

// interestedRanks returns the peer ranks whose owned-or-ghost region
// contains the wrapped cell w: the owners of all cells within the ghost
// distance of w, found by probing the 27 cube corners (rank regions are
// axis-aligned boxes at least one ghost width wide, so corners suffice).
func (st *State) interestedRanks(w lattice.Coord) []int {
	me := st.Comm.Rank()
	g := int32(st.Box.Ghost)
	var out []int
	seen := map[int]bool{me: true}
	for dz := int32(-1); dz <= 1; dz++ {
		for dy := int32(-1); dy <= 1; dy++ {
			for dx := int32(-1); dx <= 1; dx++ {
				r := st.Grid.RankOfCell(w.X+dx*g, w.Y+dy*g, w.Z+dz*g)
				if !seen[r] {
					seen[r] = true
					out = append(out, r)
				}
			}
		}
	}
	sort.Ints(out)
	return out
}

// dirtyRecord is one affected site on the wire: wrapped cell, basis,
// occupancy.
func packDirty(p *packer, w lattice.Coord, occ uint8) {
	p.i32(w.X)
	p.i32(w.Y)
	p.i32(w.Z)
	p.u8(uint8(w.B))
	p.u8(occ)
}

// applyDirty replays a peer's dirty-site message against the local halo.
// Malformed input — a truncated record or a cell outside the local region —
// fails with a descriptive kmc error rather than a raw runtime panic.
func (st *State) applyDirty(data []byte, from int) {
	u := unpacker{buf: data}
	for !u.done() {
		w := lattice.Coord{X: u.i32(), Y: u.i32(), Z: u.i32(), B: int8(u.u8())}
		occ := u.u8()
		key := st.cellKey(w.X, w.Y, w.Z)
		base, ok := st.wrapped[key]
		if !ok {
			//mdvet:panics ghost-protocol invariant in the hot exchange path; recovered as a RankPanic job error
			panic(fmt.Errorf("kmc: rank %d sent update for invisible cell %+v", from, w))
		}
		st.setOcc(base+int(w.B), occ, false)
	}
}

// flushOnDemand implements the paper's on-demand communication strategy:
// only the sites affected during the sector travel, to exactly the ranks
// that can see them (Figure 8(d)).
func (st *State) flushOnDemand() {
	// Deterministic order over the dirty set.
	dirtySorted := make([]int, 0, len(st.dirty))
	for s := range st.dirty {
		dirtySorted = append(dirtySorted, s)
	}
	sort.Ints(dirtySorted)
	st.dirty = make(map[int]bool)
	st.tel.dirtySites.Add(int64(len(dirtySorted)))

	byPeer := make(map[int]*packer)
	for _, local := range dirtySorted {
		c := st.Box.GlobalCoord(local)
		w := st.L.Wrap(c)
		for _, r := range st.interestedRanks(w) {
			p := byPeer[r]
			if p == nil {
				p = &packer{}
				byPeer[r] = p
			}
			packDirty(p, w, st.Occ[local])
		}
	}

	switch st.Cfg.Protocol {
	case OnDemand:
		// Two-sided: a (possibly zero-size) message to every peer, because
		// the receiver cannot otherwise know nothing is coming — the
		// drawback the paper calls out.
		for _, peer := range st.peers {
			var payload []byte
			if p := byPeer[peer]; p != nil {
				payload = p.buf
			}
			st.Comm.Send(peer, tagKDirty, payload)
			st.tel.dirtyBytes.Add(int64(len(payload)))
		}
		for _, peer := range st.peers {
			status := st.Comm.Probe(peer, tagKDirty)
			data, _ := st.Comm.Recv(status.Source, status.Tag)
			st.applyDirty(data, peer)
		}
	case OnDemandOneSided:
		// One-sided: only ranks with updates put; the fence synchronizes.
		for _, peer := range st.peers {
			if p := byPeer[peer]; p != nil && len(p.buf) > 0 {
				st.win.Put(peer, p.buf)
				st.tel.dirtyBytes.Add(int64(len(p.buf)))
			}
		}
		for _, m := range st.win.Fence() {
			st.applyDirty(m.Data, m.Source)
		}
	default:
		//mdvet:panics unreachable by construction: Config pins the protocol before the state exists
		panic("kmc: flushOnDemand with traditional protocol")
	}
}

// Stats returns the accumulated communication counters.
func (st *State) Stats() mpi.Stats { return st.Comm.Stats() }
