package kmc

import (
	"strings"
	"testing"
)

func TestRecorderSeries(t *testing.T) {
	cfg := testConfig()
	cfg.VacancyConcentration = 0.004
	runWorld(t, cfg, func(st *State) {
		var rec Recorder
		events := rec.RunSampled(st, 20, 5)
		if events == 0 {
			t.Fatalf("no events recorded")
		}
		// Initial sample + one per 5 cycles.
		if len(rec.Points) != 1+4 {
			t.Fatalf("%d samples, want 5", len(rec.Points))
		}
		first, last := rec.Points[0], rec.Points[len(rec.Points)-1]
		if first.Cycle != 0 || last.Cycle != 20 {
			t.Errorf("cycle range %d..%d", first.Cycle, last.Cycle)
		}
		if last.MCTime <= first.MCTime {
			t.Errorf("MC time not advancing in series")
		}
		if last.Events != events {
			t.Errorf("final event count %d, want %d", last.Events, events)
		}
		for _, p := range rec.Points {
			if p.Clusters <= 0 || p.Energy >= 0 {
				t.Errorf("implausible sample %+v", p)
			}
		}
	})
}

func TestRecorderCSV(t *testing.T) {
	cfg := testConfig()
	runWorld(t, cfg, func(st *State) {
		var rec Recorder
		rec.RunSampled(st, 4, 2)
		var sb strings.Builder
		if err := rec.WriteCSV(&sb); err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
		if len(lines) != 1+len(rec.Points) {
			t.Fatalf("CSV has %d lines, want %d", len(lines), 1+len(rec.Points))
		}
		if !strings.HasPrefix(lines[0], "cycle,mc_time_s") {
			t.Errorf("header %q", lines[0])
		}
	})
}
