package kmc

import (
	"math"
	"testing"
	"testing/quick"

	"mdkmc/internal/lattice"
	"mdkmc/internal/mpi"
	"mdkmc/internal/units"
)

func runWorld(t *testing.T, cfg Config, fn func(st *State)) {
	t.Helper()
	w := mpi.NewWorld(cfg.Ranks())
	w.Run(func(c *mpi.Comm) {
		st, err := NewState(cfg, c)
		if err != nil {
			panic(err)
		}
		fn(st)
	})
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Cells = [3]int{12, 12, 12}
	cfg.VacancyConcentration = 0.002 // enough vacancies for activity
	return cfg
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bads := []func(*Config){
		func(c *Config) { c.Cells[0] = 0 },
		func(c *Config) { c.A = -1 },
		func(c *Config) { c.Temperature = 0 },
		func(c *Config) { c.Nu = 0 },
		func(c *Config) { c.Em = -0.1 },
		func(c *Config) { c.VacancyConcentration = 0.9 },
		func(c *Config) { c.DtFactor = 0 },
	}
	for i, mutate := range bads {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestVacancyPlacementDeterministic(t *testing.T) {
	cfg := testConfig()
	var first []lattice.Coord
	runWorld(t, cfg, func(st *State) {
		first = st.VacancySites()
	})
	runWorld(t, cfg, func(st *State) {
		again := st.VacancySites()
		if len(again) != len(first) {
			t.Fatalf("vacancy count changed: %d vs %d", len(again), len(first))
		}
		for i := range again {
			if again[i] != first[i] {
				t.Fatalf("vacancy %d moved: %+v vs %+v", i, again[i], first[i])
			}
		}
	})
}

func TestExplicitVacancyList(t *testing.T) {
	cfg := testConfig()
	cfg.VacancyConcentration = 0
	cfg.Vacancies = []int{10, 11, 500, 2001}
	runWorld(t, cfg, func(st *State) {
		if got := st.GlobalVacancyCount(); got != 4 {
			t.Errorf("vacancy count %d, want 4", got)
		}
	})
}

func TestRhoMatchesFromScratch(t *testing.T) {
	// Incremental ρ maintenance must agree with a full recomputation after
	// a batch of events.
	cfg := testConfig()
	runWorld(t, cfg, func(st *State) {
		for i := 0; i < 5; i++ {
			st.Cycle()
		}
		// Recompute ρ of every owned site from occupancy.
		st.Box.EachOwned(func(c lattice.Coord, local int) {
			var rho float64
			for k, d := range st.deltas[c.B] {
				rho += st.en.shells.fval(st.Occ[local+int(d)], int(c.B), k)
			}
			if math.Abs(rho-st.Rho[local]) > 1e-9 {
				t.Fatalf("site %d: incremental ρ %v vs recomputed %v", local, st.Rho[local], rho)
			}
		})
	})
}

func TestSiteConservation(t *testing.T) {
	cfg := testConfig()
	runWorld(t, cfg, func(st *State) {
		before := st.GlobalVacancyCount()
		events := 0
		for i := 0; i < 10; i++ {
			events += st.Cycle()
		}
		tot := st.Comm.Allreduce(mpi.Sum, float64(events))
		if tot[0] == 0 {
			t.Fatalf("no events in 10 cycles")
		}
		if after := st.GlobalVacancyCount(); after != before {
			t.Errorf("vacancy count changed: %d -> %d", before, after)
		}
	})
}

func TestTimeAdvancesMonotonically(t *testing.T) {
	cfg := testConfig()
	runWorld(t, cfg, func(st *State) {
		prev := st.Time
		for i := 0; i < 5; i++ {
			st.Cycle()
			if st.Time <= prev {
				t.Fatalf("time did not advance: %v -> %v", prev, st.Time)
			}
			prev = st.Time
		}
	})
}

func TestRatesPositiveAndBoltzmann(t *testing.T) {
	kBT := units.Boltzmann * 600
	r0 := hopRate(1e13, 0.65, kBT, 0)
	if r0 <= 0 {
		t.Fatalf("zero-dE rate %v", r0)
	}
	// Uphill hops are slower, downhill faster, with the KRA ratio
	// exp(-dE/2kBT) relative to the symmetric barrier.
	up := hopRate(1e13, 0.65, kBT, 0.2)
	down := hopRate(1e13, 0.65, kBT, -0.2)
	if !(down > r0 && r0 > up) {
		t.Errorf("rate ordering wrong: down=%v r0=%v up=%v", down, r0, up)
	}
	wantRatio := math.Exp(0.2 / kBT)
	if got := down / up; math.Abs(got-wantRatio)/wantRatio > 1e-9 {
		t.Errorf("detailed-balance ratio %v, want %v", got, wantRatio)
	}
}

func TestDivacancyBinding(t *testing.T) {
	// Adjacent vacancies must have lower energy than separated ones, or
	// clustering (Fig. 17) cannot emerge. Measure via the hop energetics:
	// moving an atom to separate two 1NN vacancies must cost energy, i.e.
	// the reverse (joining) hop has dE < 0.
	cfg := testConfig()
	cfg.VacancyConcentration = 0
	// Two vacancies: one at cell (6,6,6) corner, and its 1NN at the center
	// of cell (5,5,5)... place corner (6,6,6,B0) and (5,5,5,B1), which are
	// 1NN in BCC.
	l := lattice.New(cfg.Cells[0], cfg.Cells[1], cfg.Cells[2], cfg.A)
	v1 := l.Index(lattice.Coord{X: 6, Y: 6, Z: 6, B: 0})
	far := l.Index(lattice.Coord{X: 2, Y: 2, Z: 2, B: 0})
	cfg.Vacancies = []int{v1, far}
	runWorld(t, cfg, func(st *State) {
		// Hop an atom at a 1NN of v1 into v1: the new vacancy is then 1NN
		// of nothing (far is remote), so dE measures a neutral hop.
		cv := lattice.Coord{X: 6, Y: 6, Z: 6, B: 0}
		s := st.Box.LocalIndex(cv)
		basis := int8(0)
		// Neutral hop baseline.
		k0 := 0
		n0 := s + int(st.shell1[basis][k0])
		cn0 := st.Tab.PerBase[basis][k0].Apply(cv)
		dENeutral := st.en.swapDeltaE(st, s, n0, cv, cn0)

		// Now place a second vacancy 1NN of the hop target's destination...
		// Simpler direct check: energy of config with two adjacent
		// vacancies vs two separated, via summed swap moves. Move the far
		// vacancy step by step next to v1 and accumulate dE; total must be
		// negative (binding).
		_ = dENeutral
		total := 0.0
		// Walk the vacancy at (2,2,2,B0) to (5,5,5,B1) ~ 1NN of v1 by
		// repeated swaps along a deterministic path.
		cur := lattice.Coord{X: 2, Y: 2, Z: 2, B: 0}
		path := []lattice.Coord{
			{X: 2, Y: 2, Z: 2, B: 1}, {X: 3, Y: 3, Z: 3, B: 0}, {X: 3, Y: 3, Z: 3, B: 1},
			{X: 4, Y: 4, Z: 4, B: 0}, {X: 4, Y: 4, Z: 4, B: 1},
			{X: 5, Y: 5, Z: 5, B: 0}, {X: 5, Y: 5, Z: 5, B: 1},
		}
		for _, next := range path {
			sl := st.Box.LocalIndex(cur)
			nl := st.Box.LocalIndex(next)
			// dE of moving the atom at `next` into the vacancy at `cur`
			// moves the vacancy to `next`.
			dE := st.en.swapDeltaE(st, sl, nl, cur, next)
			total += dE
			st.setOcc(sl, Atom, false)
			st.setOcc(nl, Vacant, false)
			cur = next
		}
		if total >= 0 {
			t.Errorf("divacancy binding energy %v eV, want negative (attractive)", total)
		}
	})
}

func TestProtocolsProduceIdenticalTrajectories(t *testing.T) {
	// The headline correctness property of the on-demand strategy: it is a
	// pure communication optimization, so the trajectory must be identical
	// site-by-site with the traditional protocol, in serial and parallel.
	for _, grid := range [][3]int{{1, 1, 1}, {2, 1, 1}} {
		cfg := testConfig()
		cfg.Cells = [3]int{22, 11, 11}
		cfg.Grid = grid
		snapshots := map[Protocol]map[int]uint8{}
		times := map[Protocol]float64{}
		for _, proto := range []Protocol{Traditional, OnDemand, OnDemandOneSided} {
			cfg.Protocol = proto
			merged := make(map[int]uint8)
			mu := make(chan struct{}, 1)
			mu <- struct{}{}
			var tEnd float64
			w := mpi.NewWorld(cfg.Ranks())
			w.Run(func(c *mpi.Comm) {
				st, err := NewState(cfg, c)
				if err != nil {
					panic(err)
				}
				for i := 0; i < 12; i++ {
					st.Cycle()
				}
				snap := st.Snapshot()
				<-mu
				for k, v := range snap {
					merged[k] = v
				}
				tEnd = st.Time
				mu <- struct{}{}
			})
			snapshots[proto] = merged
			times[proto] = tEnd
		}
		base := snapshots[Traditional]
		for _, proto := range []Protocol{OnDemand, OnDemandOneSided} {
			other := snapshots[proto]
			if len(other) != len(base) {
				t.Fatalf("grid %v %v: %d sites vs %d", grid, proto, len(other), len(base))
			}
			diff := 0
			for k, v := range base {
				if other[k] != v {
					diff++
				}
			}
			if diff != 0 {
				t.Errorf("grid %v: %v differs from traditional at %d sites", grid, proto, diff)
			}
			if times[proto] != times[Traditional] {
				t.Errorf("grid %v: %v time %v vs traditional %v", grid, proto,
					times[proto], times[Traditional])
			}
		}
	}
}

func TestOnDemandCommVolumeMuchSmaller(t *testing.T) {
	// Figure 12's claim: with a low vacancy concentration, on-demand
	// communication volume is a tiny fraction of the traditional ghost
	// exchange.
	cfg := testConfig()
	cfg.Cells = [3]int{22, 22, 11}
	cfg.Grid = [3]int{2, 2, 1}
	cfg.VacancyConcentration = 5e-4
	volumes := map[Protocol]int64{}
	for _, proto := range []Protocol{Traditional, OnDemand} {
		cfg.Protocol = proto
		var total int64
		mu := make(chan struct{}, 1)
		mu <- struct{}{}
		w := mpi.NewWorld(cfg.Ranks())
		w.Run(func(c *mpi.Comm) {
			st, err := NewState(cfg, c)
			if err != nil {
				panic(err)
			}
			base := st.Stats().BytesSent // exclude the handshake
			for i := 0; i < 5; i++ {
				st.Cycle()
			}
			d := st.Stats().BytesSent - base
			<-mu
			total += d
			mu <- struct{}{}
		})
		volumes[proto] = total
	}
	frac := float64(volumes[OnDemand]) / float64(volumes[Traditional])
	if frac > 0.2 {
		t.Errorf("on-demand volume fraction %.3f, want << 1 (paper: 0.026)", frac)
	}
	if volumes[OnDemand] == 0 {
		t.Errorf("on-demand sent no bytes at all")
	}
}

func TestOneSidedEliminatesEmptyMessages(t *testing.T) {
	cfg := testConfig()
	cfg.Cells = [3]int{22, 11, 11}
	cfg.Grid = [3]int{2, 1, 1}
	cfg.VacancyConcentration = 2e-4 // very few events
	msgs := map[Protocol]int64{}
	for _, proto := range []Protocol{OnDemand, OnDemandOneSided} {
		cfg.Protocol = proto
		var total int64
		mu := make(chan struct{}, 1)
		mu <- struct{}{}
		w := mpi.NewWorld(cfg.Ranks())
		w.Run(func(c *mpi.Comm) {
			st, err := NewState(cfg, c)
			if err != nil {
				panic(err)
			}
			base := st.Stats().MsgsSent
			for i := 0; i < 5; i++ {
				st.Cycle()
			}
			d := st.Stats().MsgsSent - base
			<-mu
			total += d
			mu <- struct{}{}
		})
		msgs[proto] = total
	}
	if msgs[OnDemandOneSided] >= msgs[OnDemand] {
		t.Errorf("one-sided sent %d msgs, two-sided %d: zero-size messages not eliminated",
			msgs[OnDemandOneSided], msgs[OnDemand])
	}
}

func TestSectorOfCoversAllOctants(t *testing.T) {
	cfg := testConfig()
	runWorld(t, cfg, func(st *State) {
		seen := map[int]int{}
		st.Box.EachOwned(func(c lattice.Coord, _ int) {
			sec := st.sectorOf(c)
			if sec < 0 || sec > 7 {
				t.Fatalf("sector %d out of range", sec)
			}
			seen[sec]++
		})
		if len(seen) != 8 {
			t.Errorf("only %d sectors populated", len(seen))
		}
	})
}

func TestVacanciesMoveOverTime(t *testing.T) {
	cfg := testConfig()
	runWorld(t, cfg, func(st *State) {
		before := st.VacancySites()
		for i := 0; i < 15; i++ {
			st.Cycle()
		}
		after := st.VacancySites()
		if len(after) != len(before) {
			t.Fatalf("vacancy count changed")
		}
		moved := false
		pos := map[lattice.Coord]bool{}
		for _, c := range before {
			pos[c] = true
		}
		for _, c := range after {
			if !pos[c] {
				moved = true
			}
		}
		if !moved {
			t.Errorf("no vacancy moved in 15 cycles")
		}
	})
}

func alloyConfig() Config {
	cfg := testConfig()
	cfg.CuConcentration = 0.02
	cfg.VacancyConcentration = 0.003
	cfg.EmCu = 0.55 // copper migrates faster than iron
	return cfg
}

func TestAlloySpeciesConservation(t *testing.T) {
	for _, grid := range [][3]int{{1, 1, 1}, {2, 1, 1}} {
		cfg := alloyConfig()
		cfg.Cells = [3]int{22, 11, 11}
		cfg.Grid = grid
		w := mpi.NewWorld(cfg.Ranks())
		w.Run(func(c *mpi.Comm) {
			st, err := NewState(cfg, c)
			if err != nil {
				panic(err)
			}
			v0, f0, c0 := st.CountSpecies()
			tot0 := c.Allreduce(mpi.Sum, float64(v0), float64(f0), float64(c0))
			if tot0[2] == 0 {
				t.Errorf("no copper placed")
			}
			for i := 0; i < 8; i++ {
				st.Cycle()
			}
			v1, f1, c1 := st.CountSpecies()
			tot1 := c.Allreduce(mpi.Sum, float64(v1), float64(f1), float64(c1))
			for i := 0; i < 3; i++ {
				if tot0[i] != tot1[i] {
					t.Errorf("grid %v species %d count changed: %v -> %v",
						grid, i, tot0[i], tot1[i])
				}
			}
		})
	}
}

func TestAlloyProtocolEquivalence(t *testing.T) {
	cfg := alloyConfig()
	cfg.Cells = [3]int{22, 11, 11}
	cfg.Grid = [3]int{2, 1, 1}
	snaps := map[Protocol]map[int]uint8{}
	for _, proto := range []Protocol{Traditional, OnDemand} {
		cfg.Protocol = proto
		merged := make(map[int]uint8)
		mu := make(chan struct{}, 1)
		mu <- struct{}{}
		w := mpi.NewWorld(cfg.Ranks())
		w.Run(func(c *mpi.Comm) {
			st, err := NewState(cfg, c)
			if err != nil {
				panic(err)
			}
			for i := 0; i < 10; i++ {
				st.Cycle()
			}
			snap := st.Snapshot()
			<-mu
			for k, v := range snap {
				merged[k] = v
			}
			mu <- struct{}{}
		})
		snaps[proto] = merged
	}
	diff := 0
	for k, v := range snaps[Traditional] {
		if snaps[OnDemand][k] != v {
			diff++
		}
	}
	if diff != 0 {
		t.Errorf("alloy trajectories differ at %d sites", diff)
	}
}

func TestCuMigratesFasterThanFe(t *testing.T) {
	// With EmCu < Em, a vacancy-Cu exchange must outpace a comparable
	// vacancy-Fe exchange.
	cfg := alloyConfig()
	runWorld(t, cfg, func(st *State) {
		if feRate, cuRate := st.emFor(Atom), st.emFor(CuAtom); cuRate >= feRate {
			t.Errorf("EmCu %v not below Em %v", cuRate, feRate)
		}
		kBT := st.kBT
		rFe := hopRate(cfg.Nu, st.emFor(Atom), kBT, 0)
		rCu := hopRate(cfg.Nu, st.emFor(CuAtom), kBT, 0)
		if rCu <= rFe {
			t.Errorf("Cu hop rate %v not above Fe %v", rCu, rFe)
		}
	})
}

func TestCuCuBindingFromMixingEnthalpy(t *testing.T) {
	// The biased cross pair gives unlike bonds a positive cost, so two
	// adjacent Cu atoms must have lower total energy than two separated
	// ones — the driving force of precipitation.
	base := testConfig()
	base.VacancyConcentration = 0
	base.Vacancies = []int{0} // KMC requires at least one vacancy elsewhere
	l := lattice.New(base.Cells[0], base.Cells[1], base.Cells[2], base.A)

	energyWith := func(cu []lattice.Coord) float64 {
		cfg := base
		cfg.CuSites = nil
		for _, c := range cu {
			cfg.CuSites = append(cfg.CuSites, l.Index(c))
		}
		var e float64
		runWorld(t, cfg, func(st *State) { e = st.TotalEnergy() })
		return e
	}
	adjacent := energyWith([]lattice.Coord{
		{X: 6, Y: 6, Z: 6, B: 0}, {X: 6, Y: 6, Z: 6, B: 1}, // 1NN pair
	})
	separated := energyWith([]lattice.Coord{
		{X: 6, Y: 6, Z: 6, B: 0}, {X: 2, Y: 2, Z: 2, B: 1},
	})
	if adjacent >= separated {
		t.Errorf("adjacent Cu pair energy %v not below separated %v", adjacent, separated)
	}
}

func TestAlloyValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CuConcentration = 0.9
	if err := cfg.Validate(); err == nil {
		t.Errorf("huge Cu concentration accepted")
	}
	cfg = DefaultConfig()
	cfg.EmCu = -1
	if err := cfg.Validate(); err == nil {
		t.Errorf("negative EmCu accepted")
	}
}

func TestInterestedRanksMatchBruteForce(t *testing.T) {
	// interestedRanks uses the 27-corner shortcut; verify against scanning
	// the full cube of cells within the ghost distance.
	cfg := testConfig()
	cfg.Cells = [3]int{22, 22, 11}
	cfg.Grid = [3]int{2, 2, 1}
	runWorld(t, cfg, func(st *State) {
		g := int32(st.Box.Ghost)
		probe := func(w lattice.Coord) {
			got := st.interestedRanks(w)
			want := map[int]bool{}
			for dz := -g; dz <= g; dz++ {
				for dy := -g; dy <= g; dy++ {
					for dx := -g; dx <= g; dx++ {
						r := st.Grid.RankOfCell(w.X+dx, w.Y+dy, w.Z+dz)
						if r != st.Comm.Rank() {
							want[r] = true
						}
					}
				}
			}
			if len(got) != len(want) {
				t.Fatalf("cell %+v: interest %v vs brute-force %v", w, got, want)
			}
			for _, r := range got {
				if !want[r] {
					t.Fatalf("cell %+v: spurious interested rank %d", w, r)
				}
			}
		}
		// Probe corners, edges and interior of the owned region.
		for _, c := range []lattice.Coord{
			{X: int32(st.Box.Lo[0]), Y: int32(st.Box.Lo[1]), Z: int32(st.Box.Lo[2])},
			{X: int32(st.Box.Hi[0] - 1), Y: int32(st.Box.Hi[1] - 1), Z: int32(st.Box.Hi[2] - 1)},
			{X: int32(st.Box.Lo[0] + 3), Y: int32(st.Box.Lo[1]), Z: int32(st.Box.Lo[2] + 2)},
			{X: int32((st.Box.Lo[0] + st.Box.Hi[0]) / 2), Y: int32((st.Box.Lo[1] + st.Box.Hi[1]) / 2), Z: int32((st.Box.Lo[2] + st.Box.Hi[2]) / 2)},
		} {
			probe(st.L.Wrap(c))
		}
	})
}

func TestPackerRoundTripQuick(t *testing.T) {
	f := func(a int32, b uint8, c int32) bool {
		var p packer
		p.i32(a)
		p.u8(b)
		p.i32(c)
		u := unpacker{buf: p.buf}
		return u.i32() == a && u.u8() == b && u.i32() == c && u.done()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSwapDeltaEReversible(t *testing.T) {
	// Microscopic reversibility of the energetics: the energy change of a
	// hop equals minus the energy change of the reverse hop evaluated in
	// the post-hop state. Combined with the KRA barrier this gives detailed
	// balance: k(i->j)/k(j->i) = exp(-dE/kBT).
	cfg := testConfig()
	cfg.VacancyConcentration = 0.004
	runWorld(t, cfg, func(st *State) {
		checked := 0
		for _, v := range st.OwnedVacancies() {
			cv := st.Box.GlobalCoord(v)
			basis := int8(v & 1)
			for k, d := range st.shell1[basis] {
				n := v + int(d)
				if st.Occ[n] == Vacant {
					continue
				}
				cn := st.Tab.PerBase[basis][k].Apply(cv)
				fwd := st.en.swapDeltaE(st, v, n, cv, cn)
				// Apply the swap, evaluate the reverse, undo.
				moving := st.Occ[n]
				st.setOcc(v, moving, false)
				st.setOcc(n, Vacant, false)
				rev := st.en.swapDeltaE(st, n, v, cn, cv)
				st.setOcc(n, moving, false)
				st.setOcc(v, Vacant, false)
				if math.Abs(fwd+rev) > 1e-9 {
					t.Fatalf("hop %d->%d not reversible: fwd %v rev %v", v, n, fwd, rev)
				}
				// Detailed balance of the rates.
				kf := hopRate(cfg.Nu, cfg.Em, st.kBT, fwd)
				kr := hopRate(cfg.Nu, cfg.Em, st.kBT, rev)
				want := math.Exp(-fwd / st.kBT)
				if got := kf / kr; math.Abs(got-want)/want > 1e-9 {
					t.Fatalf("detailed balance broken: %v vs %v", got, want)
				}
				checked++
			}
		}
		if checked < 10 {
			t.Fatalf("only %d hops checked", checked)
		}
	})
}

func TestBoltzmannEquilibriumTwoStateToy(t *testing.T) {
	// A vacancy next to a divacancy trap: over a long trajectory, the
	// fraction of time spent bound vs free must follow the Boltzmann factor
	// of the binding energy. This is a statistical test of the full
	// engine (rates, selection, clock), so tolerances are loose.
	cfg := testConfig()
	cfg.Cells = [3]int{6, 6, 6} // small box: the free state is well sampled
	cfg.VacancyConcentration = 0
	l := lattice.New(6, 6, 6, cfg.A)
	// A vacancy pair forming the trap, plus one mobile vacancy.
	cfg.Vacancies = []int{
		l.Index(lattice.Coord{X: 3, Y: 3, Z: 3, B: 0}),
		l.Index(lattice.Coord{X: 3, Y: 3, Z: 3, B: 1}),
		l.Index(lattice.Coord{X: 1, Y: 1, Z: 1, B: 0}),
	}
	cfg.Temperature = 1500 // hot: un-trapping happens often enough to sample
	runWorld(t, cfg, func(st *State) {
		bound := 0.0
		total := 0.0
		for i := 0; i < 2500; i++ {
			st.Cycle()
			// Measure: is any vacancy pair within 1NN?
			sites := st.VacancySites()
			isBound := false
			for a := 0; a < len(sites); a++ {
				for b := a + 1; b < len(sites); b++ {
					d := st.L.MinImage(st.L.Position(sites[a]), st.L.Position(sites[b])).Norm()
					if d < 1.1*st.L.FirstNeighborDistance() {
						isBound = true
					}
				}
			}
			if isBound {
				bound++
			}
			total++
		}
		// With attractive binding, bound configurations must be strongly
		// over-represented relative to the ~5% random-placement baseline of
		// this box size.
		frac := bound / total
		if frac < 0.25 {
			t.Errorf("bound fraction %.3f: binding not expressed in equilibrium", frac)
		}
	})
}
