package kmc

import (
	"encoding/gob"
	"fmt"
	"io"
)

// checkpoint is the serialized per-rank KMC state. Geometry and plans are
// rebuilt from the Config on restore; occupancy, densities and the clock
// are carried over, so the continued trajectory — whose RNG streams are a
// pure function of (seed, rank, cycle, sector) — is bit-identical to an
// uninterrupted run.
type checkpoint struct {
	Version int
	Rank    int
	Occ     []uint8
	Rho     []float64
	Time    float64
	Cycles  int
	Events  int
}

// Version history: 1 carried (Occ, Rho, Time, Cycles); 2 adds the
// cumulative per-rank event counter so a restarted run reports the same
// total event count as an uninterrupted one.
const checkpointVersion = 2

// Save writes this rank's mutable state; call it at a cycle boundary (the
// dirty set must be empty, which Cycle guarantees on return).
func (st *State) Save(w io.Writer) error {
	if len(st.dirty) != 0 {
		return fmt.Errorf("kmc: checkpoint requested mid-sector (%d dirty sites)", len(st.dirty))
	}
	return gob.NewEncoder(w).Encode(checkpoint{
		Version: checkpointVersion,
		Rank:    st.Comm.Rank(),
		Occ:     st.Occ,
		Rho:     st.Rho,
		Time:    st.Time,
		Cycles:  st.Cycles,
		Events:  st.Events,
	})
}

// Restore loads state written by Save into a state built with the same
// Config and world size.
func (st *State) Restore(rd io.Reader) error {
	var cp checkpoint
	if err := gob.NewDecoder(rd).Decode(&cp); err != nil {
		return fmt.Errorf("kmc: decoding checkpoint: %w", err)
	}
	if cp.Version != checkpointVersion {
		return fmt.Errorf("kmc: checkpoint version %d, want %d", cp.Version, checkpointVersion)
	}
	if cp.Rank != st.Comm.Rank() {
		return fmt.Errorf("kmc: checkpoint is for rank %d, this is rank %d", cp.Rank, st.Comm.Rank())
	}
	if len(cp.Occ) != len(st.Occ) {
		return fmt.Errorf("kmc: checkpoint has %d sites, state has %d", len(cp.Occ), len(st.Occ))
	}
	copy(st.Occ, cp.Occ)
	copy(st.Rho, cp.Rho)
	st.Time = cp.Time
	st.Cycles = cp.Cycles
	st.Events = cp.Events
	// Rebuild the owned-vacancy index and the event-rate cache from the
	// restored occupancy.
	st.rebuildVacancyIndex()
	return nil
}
