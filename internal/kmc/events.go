package kmc

import (
	"sort"

	"mdkmc/internal/lattice"
)

// Incremental event-rate bookkeeping. The seed implementation re-enumerated
// every candidate hop of a sector (each a swapDeltaE evaluation over the
// full Rho/phi shells) on every executed event, making a cycle
// O(events x vacancies x 8). This file caches, per owned vacancy, its <=8
// candidate hop rates and invalidates entries only within the exact
// dependency radius of an occupancy change, so steady-state selection costs
// O(active vacancies) float additions per event and swapDeltaE runs only
// where the state actually changed — whether the change came from an
// executed hop, a traditional ghost get/put, or an on-demand dirty record.
//
// Determinism contract: rates are cached bit-exactly (a cached value always
// equals what a fresh swapDeltaE at the current state would produce, because
// invalidation is conservative over the full footprint), and both the sum
// and the selection walk run in the seed's enumeration order (ascending
// owned vacancy index, then first-shell offset index). Trajectories are
// therefore bit-identical to the full-rescan mode across all protocols.

// vacCache holds the cached candidate hop rates of one owned vacancy.
type vacCache struct {
	cx, cy, cz int32 // unwrapped owned cell coordinate (Box.GlobalCoord)
	sector     int   // octant of the subdomain; fixed per site
	valid      bool
	n          int        // number of first-shell candidates (len(shell1))
	mask       uint8      // bit k set when target k holds an atom (a real event)
	rates      [8]float64 // rate of candidate k; meaningful where mask bit set
}

// vacAdd registers local as an owned vacancy: owned-vacancy index, per-sector
// selection list (kept in ascending order), and an empty rate-cache entry.
func (st *State) vacAdd(local int) {
	if st.ownedVac[local] {
		return
	}
	st.ownedVac[local] = true
	c := st.Box.GlobalCoord(local)
	sec := st.sectorOf(c)
	list := st.secVacs[sec]
	i := sort.SearchInts(list, local)
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = local
	st.secVacs[sec] = list
	st.rateCache[local] = &vacCache{cx: c.X, cy: c.Y, cz: c.Z, sector: sec}
}

// vacRemove unregisters an owned vacancy that became occupied.
func (st *State) vacRemove(local int) {
	if !st.ownedVac[local] {
		return
	}
	delete(st.ownedVac, local)
	vc := st.rateCache[local]
	delete(st.rateCache, local)
	list := st.secVacs[vc.sector]
	i := sort.SearchInts(list, local)
	st.secVacs[vc.sector] = append(list[:i], list[i+1:]...)
}

// rebuildVacancyIndex reconstructs the vacancy bookkeeping (owned-vacancy
// set, per-sector lists, rate cache) from the current occupancy — used at
// initialization and after a checkpoint restore.
func (st *State) rebuildVacancyIndex() {
	st.ownedVac = make(map[int]bool)
	st.rateCache = make(map[int]*vacCache)
	for sec := range st.secVacs {
		st.secVacs[sec] = nil
	}
	st.Box.EachOwned(func(_ lattice.Coord, local int) {
		if st.Occ[local] == Vacant {
			st.vacAdd(local)
		}
	})
}

// invalidateNear marks stale every cached vacancy whose rate footprint can
// see the changed cell c. A rate depends on occupancy within reach+1 cells
// of the vacancy directly (the phi pair shells around source and target)
// and within 2*reach+1 cells through the incrementally maintained Rho (the
// embedding terms read rho of bystanders up to reach+1 out, and each rho
// sums occupancy another reach out) — see energetics.dependencyReach.
// setOcc calls this once per actually changed local image, so periodic
// wrap-around adjacency is covered by the image copies.
//
//mdvet:hot
func (st *State) invalidateNear(c lattice.Coord) {
	r := int32(st.dependReach)
	for _, vc := range st.rateCache {
		if !vc.valid {
			continue
		}
		dx, dy, dz := vc.cx-c.X, vc.cy-c.Y, vc.cz-c.Z
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		if dz < 0 {
			dz = -dz
		}
		if dx <= r && dy <= r && dz <= r {
			vc.valid = false
		}
	}
}

// ratesOf returns the up-to-date candidate rates of owned vacancy v,
// recomputing the entry when stale — or always, in full-rescan debug mode,
// which makes this exactly the seed's per-event enumeration.
//
//mdvet:hot
func (st *State) ratesOf(v int, vc *vacCache) *vacCache {
	if vc.valid && !st.fullRescan {
		return vc
	}
	basis := v & 1
	cv := lattice.Coord{X: vc.cx, Y: vc.cy, Z: vc.cz, B: int8(basis)}
	vc.n = len(st.shell1[basis])
	vc.mask = 0
	for k, d := range st.shell1[basis] {
		n := v + int(d)
		if st.Occ[n] == Vacant {
			vc.rates[k] = 0
			continue // vacancy-vacancy exchange is a no-op
		}
		off := st.Tab.PerBase[basis][k]
		cn := off.Apply(cv)
		dE := st.en.swapDeltaE(st, v, n, cv, cn)
		vc.rates[k] = hopRate(st.Cfg.Nu, st.emFor(st.Occ[n]), st.kBT, dE)
		vc.mask |= 1 << uint(k)
	}
	vc.valid = true
	return vc
}

// sectorRate returns the total transition rate of sector sec, refreshing
// stale cache entries on the way. The flat summation order (ascending
// vacancy, then offset) is identical to the seed's sectorEvents loop, so
// the float total is bit-identical to a full rescan.
//
//mdvet:hot
func (st *State) sectorRate(sec int) float64 {
	var total float64
	for _, v := range st.secVacs[sec] {
		vc := st.ratesOf(v, st.rateCache[v])
		for k := 0; k < vc.n; k++ {
			if vc.mask&(1<<uint(k)) != 0 {
				total += vc.rates[k]
			}
		}
	}
	return total
}

// pickEvent selects the event at cumulative rate u, walking the sector's
// candidates in the same deterministic order sectorRate summed them. When u
// lands past the total (float round-off), the last candidate wins —
// mirroring the seed's evs[len(evs)-1] fallback. Every cache entry is fresh
// here because sectorRate ran in the same loop iteration.
//
//mdvet:hot
func (st *State) pickEvent(sec int, u float64) (site, target int) {
	acc := 0.0
	site, target = -1, -1
	for _, v := range st.secVacs[sec] {
		vc := st.rateCache[v]
		basis := v & 1
		for k := 0; k < vc.n; k++ {
			if vc.mask&(1<<uint(k)) == 0 {
				continue
			}
			site, target = v, v+int(st.shell1[basis][k])
			acc += vc.rates[k]
			if u < acc {
				return
			}
		}
	}
	return
}
