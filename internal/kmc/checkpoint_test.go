package kmc

import (
	"bytes"
	"testing"
)

// TestCheckpointResumeIdentical: the resumed trajectory matches the
// uninterrupted one exactly (occupancies and clock).
func TestCheckpointResumeIdentical(t *testing.T) {
	cfg := testConfig()

	var straight map[int]uint8
	var straightTime float64
	runWorld(t, cfg, func(st *State) {
		for i := 0; i < 16; i++ {
			st.Cycle()
		}
		straight = st.Snapshot()
		straightTime = st.Time
	})

	var blob bytes.Buffer
	runWorld(t, cfg, func(st *State) {
		for i := 0; i < 7; i++ {
			st.Cycle()
		}
		if err := st.Save(&blob); err != nil {
			t.Errorf("save: %v", err)
		}
	})

	runWorld(t, cfg, func(st *State) {
		if err := st.Restore(bytes.NewReader(blob.Bytes())); err != nil {
			t.Errorf("restore: %v", err)
			return
		}
		if st.Cycles != 7 {
			t.Errorf("restored cycle count %d", st.Cycles)
		}
		for i := 0; i < 9; i++ {
			st.Cycle()
		}
		if st.Time != straightTime {
			t.Errorf("resumed time %v vs straight %v", st.Time, straightTime)
		}
		snap := st.Snapshot()
		diff := 0
		for k, v := range straight {
			if snap[k] != v {
				diff++
			}
		}
		if diff != 0 {
			t.Errorf("resumed trajectory differs at %d sites", diff)
		}
	})
}

func TestCheckpointRejectsWrongGeometry(t *testing.T) {
	var blob bytes.Buffer
	cfg := testConfig()
	runWorld(t, cfg, func(st *State) {
		if err := st.Save(&blob); err != nil {
			t.Errorf("save: %v", err)
		}
	})
	big := testConfig()
	big.Cells = [3]int{14, 14, 14}
	runWorld(t, big, func(st *State) {
		if err := st.Restore(bytes.NewReader(blob.Bytes())); err == nil {
			t.Errorf("mismatched geometry accepted")
		}
	})
}
