package kmc

import (
	"bytes"
	"testing"
)

// TestCheckpointResumeIdentical: the resumed trajectory matches the
// uninterrupted one exactly (occupancies and clock).
func TestCheckpointResumeIdentical(t *testing.T) {
	cfg := testConfig()

	var straight map[int]uint8
	var straightTime float64
	runWorld(t, cfg, func(st *State) {
		for i := 0; i < 16; i++ {
			st.Cycle()
		}
		straight = st.Snapshot()
		straightTime = st.Time
	})

	var blob bytes.Buffer
	runWorld(t, cfg, func(st *State) {
		for i := 0; i < 7; i++ {
			st.Cycle()
		}
		if err := st.Save(&blob); err != nil {
			t.Errorf("save: %v", err)
		}
	})

	runWorld(t, cfg, func(st *State) {
		if err := st.Restore(bytes.NewReader(blob.Bytes())); err != nil {
			t.Errorf("restore: %v", err)
			return
		}
		if st.Cycles != 7 {
			t.Errorf("restored cycle count %d", st.Cycles)
		}
		for i := 0; i < 9; i++ {
			st.Cycle()
		}
		if st.Time != straightTime {
			t.Errorf("resumed time %v vs straight %v", st.Time, straightTime)
		}
		snap := st.Snapshot()
		diff := 0
		for k, v := range straight {
			if snap[k] != v {
				diff++
			}
		}
		if diff != 0 {
			t.Errorf("resumed trajectory differs at %d sites", diff)
		}
	})
}

func TestCheckpointRejectsWrongGeometry(t *testing.T) {
	var blob bytes.Buffer
	cfg := testConfig()
	runWorld(t, cfg, func(st *State) {
		if err := st.Save(&blob); err != nil {
			t.Errorf("save: %v", err)
		}
	})
	big := testConfig()
	big.Cells = [3]int{14, 14, 14}
	runWorld(t, big, func(st *State) {
		if err := st.Restore(bytes.NewReader(blob.Bytes())); err == nil {
			t.Errorf("mismatched geometry accepted")
		}
	})
}

// TestCheckpointResumeIdenticalProtocols is the round-trip property on a
// 2-rank decomposition under every ghost protocol: Save after 7 cycles,
// Restore into fresh states, run 9 more — occupancies, clock, and the
// cumulative event counter must match 16 straight cycles bit-exactly.
func TestCheckpointResumeIdenticalProtocols(t *testing.T) {
	for _, proto := range []Protocol{Traditional, OnDemand, OnDemandOneSided} {
		t.Run(proto.String(), func(t *testing.T) {
			cfg := testConfig()
			cfg.Cells = [3]int{24, 12, 12}
			cfg.Grid = [3]int{2, 1, 1}
			cfg.Protocol = proto
			ranks := cfg.Ranks()

			straight := make([]map[int]uint8, ranks)
			straightEvents := make([]int, ranks)
			var straightTime float64
			runWorld(t, cfg, func(st *State) {
				for i := 0; i < 16; i++ {
					st.Cycle()
				}
				r := st.Comm.Rank()
				straight[r] = st.Snapshot()
				straightEvents[r] = st.Events
				if r == 0 {
					straightTime = st.Time
				}
			})

			blobs := make([]bytes.Buffer, ranks)
			runWorld(t, cfg, func(st *State) {
				for i := 0; i < 7; i++ {
					st.Cycle()
				}
				if err := st.Save(&blobs[st.Comm.Rank()]); err != nil {
					t.Errorf("save: %v", err)
				}
			})

			runWorld(t, cfg, func(st *State) {
				r := st.Comm.Rank()
				if err := st.Restore(bytes.NewReader(blobs[r].Bytes())); err != nil {
					t.Errorf("restore: %v", err)
					return
				}
				for i := 0; i < 9; i++ {
					st.Cycle()
				}
				if r == 0 && st.Time != straightTime {
					t.Errorf("resumed time %v vs straight %v", st.Time, straightTime)
				}
				if st.Events != straightEvents[r] {
					t.Errorf("rank %d resumed events %d vs straight %d", r, st.Events, straightEvents[r])
				}
				snap := st.Snapshot()
				diff := 0
				for k, v := range straight[r] {
					if snap[k] != v {
						diff++
					}
				}
				if diff != 0 {
					t.Errorf("rank %d resumed trajectory differs at %d sites", r, diff)
				}
			})
		})
	}
}
