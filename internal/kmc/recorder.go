package kmc

import (
	"io"

	"mdkmc/internal/cluster"
	"mdkmc/internal/trace"
)

// EvolutionPoint is one sample of the defect-evolution time series — the
// quantities behind the paper's Figure 17 narrative (vacancies aggregating
// over KMC time).
type EvolutionPoint struct {
	Cycle     int
	MCTime    float64
	Events    int
	Clusters  int
	Largest   int
	MeanSize  float64
	Clustered float64 // fraction of vacancies in clusters of 2+
	Energy    float64 // total EAM energy (eV)
}

// Recorder samples a State's defect statistics as cycles advance.
type Recorder struct {
	Shells int // adjacency shells for the cluster analysis (default 2)
	Points []EvolutionPoint

	events int
}

// Sample records the current state (collective: cluster analysis gathers
// owned vacancies per rank; call on every rank, use rank 0's recorder).
func (rec *Recorder) Sample(st *State) EvolutionPoint {
	shells := rec.Shells
	if shells == 0 {
		shells = 2
	}
	a := cluster.Vacancies(st.L, st.VacancySites(), shells)
	p := EvolutionPoint{
		Cycle:     st.Cycles,
		MCTime:    st.Time,
		Events:    rec.events,
		Clusters:  a.NumClusters,
		Largest:   a.Largest,
		MeanSize:  a.MeanSize,
		Clustered: a.ClusteredFraction,
		Energy:    st.TotalEnergy(),
	}
	rec.Points = append(rec.Points, p)
	return p
}

// RunSampled advances the state by `cycles` cycles, sampling every `every`
// cycles (and once at the start and end), and returns the total events.
func (rec *Recorder) RunSampled(st *State, cycles, every int) int {
	if every <= 0 {
		every = 1
	}
	rec.Sample(st)
	total := 0
	for i := 0; i < cycles; i++ {
		total += st.Cycle()
		rec.events = total
		if (i+1)%every == 0 || i == cycles-1 {
			rec.Sample(st)
		}
	}
	return total
}

// WriteCSV emits the series through the trace CSV writer.
func (rec *Recorder) WriteCSV(w io.Writer) error {
	c, err := trace.NewCSVWriter(w,
		"cycle", "mc_time_s", "events", "clusters", "largest", "mean_size",
		"clustered_fraction", "energy_ev")
	if err != nil {
		return err
	}
	for _, p := range rec.Points {
		if err := c.Row(float64(p.Cycle), p.MCTime, float64(p.Events),
			float64(p.Clusters), float64(p.Largest), p.MeanSize,
			p.Clustered, p.Energy); err != nil {
			return err
		}
	}
	return nil
}
