// Benchmark harness: one benchmark per figure of the paper's evaluation
// (Figures 9-17) plus the ablation benches called out in DESIGN.md §5.
// Each figure bench exercises the real implementation at laptop scale and
// reports the figure's headline quantity as a custom metric; the
// paper-scale series are printed by cmd/figures.
//
// Run with:
//
//	go test -bench=. -benchmem
package mdkmc_test

import (
	"testing"

	"mdkmc"
	"mdkmc/internal/eam"
	"mdkmc/internal/kmc"
	"mdkmc/internal/lattice"
	"mdkmc/internal/md"
	"mdkmc/internal/mpi"
	"mdkmc/internal/neighbor"
	"mdkmc/internal/perf"
	"mdkmc/internal/rng"
	"mdkmc/internal/units"
	"mdkmc/internal/vec"
)

// ---------- Figure 9: MD optimization ablation ----------

func BenchmarkFig09MDOptimizations(b *testing.B) {
	variants := []md.KernelVariant{
		md.VariantTraditional, md.VariantCompacted,
		md.VariantCompactedReuse, md.VariantFull,
	}
	for _, v := range variants {
		v := v
		b.Run(v.String(), func(b *testing.B) {
			cfg := md.DefaultConfig()
			// Large enough that each CPE's slab spans several LDM blocks,
			// so the reuse and double-buffer variants differ.
			cfg.Cells = [3]int{24, 24, 24}
			cfg.Temperature = 600
			w := mpi.NewWorld(1)
			w.Run(func(c *mpi.Comm) {
				rank, err := md.NewRank(cfg, c)
				if err != nil {
					b.Fatal(err)
				}
				rank.Kernel = md.NewCPEKernel(rank.FF, v)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					rank.Step()
				}
				b.StopTimer()
				b.ReportMetric(rank.Kernel.StepTime/float64(b.N)*1e6,
					"virtual-us/step")
				ops, bytes := rank.Kernel.CG.TotalDMA()
				b.ReportMetric(float64(ops)/float64(1), "dma-ops/last-pass")
				b.ReportMetric(float64(bytes), "dma-bytes/last-pass")
			})
		})
	}
}

// ---------- Figures 10/11: MD strong and weak scaling ----------

func benchMDScaling(b *testing.B, cells, grid [3]int) {
	cfg := md.DefaultConfig()
	cfg.Cells = cells
	cfg.Grid = grid
	cfg.TablePoints = 1000
	w := mpi.NewWorld(cfg.Ranks())
	w.Run(func(c *mpi.Comm) {
		rank, err := md.NewRank(cfg, c)
		if err != nil {
			b.Fatal(err)
		}
		if c.Rank() == 0 {
			b.ResetTimer()
		}
		c.Barrier()
		for i := 0; i < b.N; i++ {
			rank.Step()
		}
		c.Barrier()
		if c.Rank() == 0 {
			b.StopTimer()
			b.ReportMetric(float64(cfg.NumAtoms())*float64(b.N), "atom-steps")
		}
	})
}

func BenchmarkFig10MDStrongScaling(b *testing.B) {
	for _, g := range [][3]int{{1, 1, 1}, {2, 1, 1}, {2, 2, 1}, {2, 2, 2}} {
		g := g
		b.Run(benchName("ranks", g[0]*g[1]*g[2]), func(b *testing.B) {
			benchMDScaling(b, [3]int{12, 12, 12}, g)
		})
	}
}

func BenchmarkFig11MDWeakScaling(b *testing.B) {
	for _, g := range [][3]int{{1, 1, 1}, {2, 1, 1}, {2, 2, 1}} {
		g := g
		b.Run(benchName("ranks", g[0]*g[1]*g[2]), func(b *testing.B) {
			benchMDScaling(b, [3]int{8 * g[0], 8 * g[1], 8 * g[2]}, g)
		})
	}
}

// ---------- Figures 12/13: KMC communication ----------

func benchKMCComm(b *testing.B, proto kmc.Protocol) {
	cfg := kmc.DefaultConfig()
	cfg.Cells = [3]int{22, 22, 11}
	cfg.Grid = [3]int{2, 2, 1}
	cfg.VacancyConcentration = 5e-4
	cfg.Protocol = proto
	w := mpi.NewWorld(cfg.Ranks())
	stats := make([]mpi.Stats, cfg.Ranks())
	w.Run(func(c *mpi.Comm) {
		st, err := kmc.NewState(cfg, c)
		if err != nil {
			b.Fatal(err)
		}
		base := st.Stats()
		if c.Rank() == 0 {
			b.ResetTimer()
		}
		c.Barrier()
		for i := 0; i < b.N; i++ {
			st.Cycle()
		}
		c.Barrier()
		if c.Rank() == 0 {
			b.StopTimer()
		}
		s := st.Stats()
		stats[c.Rank()] = mpi.Stats{
			BytesSent: s.BytesSent - base.BytesSent,
			MsgsSent:  s.MsgsSent - base.MsgsSent,
		}
	})
	var bytes, msgs int64
	for _, s := range stats {
		bytes += s.BytesSent
		msgs += s.MsgsSent
	}
	b.ReportMetric(float64(bytes)/float64(b.N), "comm-bytes/cycle")
	b.ReportMetric(float64(msgs)/float64(b.N), "msgs/cycle")
	// The Figure 13 conversion: alpha-beta network time per cycle.
	t := perf.DefaultCommTime
	b.ReportMetric((t.Alpha*float64(msgs)+t.Beta*float64(bytes))/float64(b.N)*1e6,
		"modeled-comm-us/cycle")
}

func BenchmarkFig12KMCCommVolume(b *testing.B) {
	for _, proto := range []kmc.Protocol{kmc.Traditional, kmc.OnDemand} {
		proto := proto
		b.Run(proto.String(), func(b *testing.B) { benchKMCComm(b, proto) })
	}
}

func BenchmarkFig13KMCCommTime(b *testing.B) {
	for _, proto := range []kmc.Protocol{kmc.Traditional, kmc.OnDemand, kmc.OnDemandOneSided} {
		proto := proto
		b.Run(proto.String(), func(b *testing.B) { benchKMCComm(b, proto) })
	}
}

// ---------- KMC cycle cost: incremental event bookkeeping ----------

// BenchmarkKMCCycle contrasts the incremental event-rate cache against the
// full-rescan reference on a 20^3-cell box, at the paper-like vacancy
// concentration (1e-4) and at 10x (1e-3), where the rescan's
// O(events x vacancies) structure dominates. Trajectories are bit-identical
// between the two modes; only the cost differs.
func BenchmarkKMCCycle(b *testing.B) {
	for _, conc := range []struct {
		name string
		c    float64
	}{{"conc-1e-4", 1e-4}, {"conc-1e-3", 1e-3}} {
		for _, mode := range []struct {
			name   string
			rescan bool
		}{{"incremental", false}, {"full-rescan", true}} {
			conc, mode := conc, mode
			b.Run(conc.name+"/"+mode.name, func(b *testing.B) {
				cfg := kmc.DefaultConfig()
				cfg.Cells = [3]int{20, 20, 20}
				cfg.VacancyConcentration = conc.c
				cfg.FullRescan = mode.rescan
				w := mpi.NewWorld(1)
				w.Run(func(c *mpi.Comm) {
					st, err := kmc.NewState(cfg, c)
					if err != nil {
						b.Fatal(err)
					}
					b.ResetTimer()
					events := 0
					for i := 0; i < b.N; i++ {
						events += st.Cycle()
					}
					b.StopTimer()
					b.ReportMetric(float64(events)/float64(b.N), "events/cycle")
				})
			})
		}
	}
}

// ---------- Figures 14/15: KMC scaling ----------

func benchKMCScaling(b *testing.B, cells, grid [3]int) {
	cfg := kmc.DefaultConfig()
	cfg.Cells = cells
	cfg.Grid = grid
	cfg.VacancyConcentration = 1e-3
	w := mpi.NewWorld(cfg.Ranks())
	w.Run(func(c *mpi.Comm) {
		st, err := kmc.NewState(cfg, c)
		if err != nil {
			b.Fatal(err)
		}
		if c.Rank() == 0 {
			b.ResetTimer()
		}
		c.Barrier()
		for i := 0; i < b.N; i++ {
			st.Cycle()
		}
		c.Barrier()
		if c.Rank() == 0 {
			b.StopTimer()
		}
	})
}

func BenchmarkFig14KMCStrongScaling(b *testing.B) {
	for _, g := range [][3]int{{1, 1, 1}, {2, 1, 1}, {2, 2, 1}} {
		g := g
		b.Run(benchName("ranks", g[0]*g[1]*g[2]), func(b *testing.B) {
			benchKMCScaling(b, [3]int{22, 22, 11}, g)
		})
	}
}

func BenchmarkFig15KMCWeakScaling(b *testing.B) {
	for _, g := range [][3]int{{1, 1, 1}, {2, 1, 1}, {2, 2, 1}} {
		g := g
		b.Run(benchName("ranks", g[0]*g[1]*g[2]), func(b *testing.B) {
			benchKMCScaling(b, [3]int{11 * g[0], 11 * g[1], 11 * g[2]}, g)
		})
	}
}

// ---------- Figure 16: coupled weak scaling ----------

func BenchmarkFig16CoupledWeakScaling(b *testing.B) {
	for _, g := range [][3]int{{1, 1, 1}, {2, 1, 1}} {
		g := g
		b.Run(benchName("ranks", g[0]*g[1]*g[2]), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := mdkmc.CoupledConfig{
					MD: func() md.Config {
						m := md.DefaultConfig()
						m.Cells = [3]int{8 * g[0], 8 * g[1], 8 * g[2]}
						m.Grid = g
						m.Steps = 20
						m.Dt = 2e-4
						m.Temperature = 300
						m.TablePoints = 500
						m.PKA = &md.PKA{Energy: 150}
						return m
					}(),
					KMCCycles: 5,
					Protocol:  kmc.OnDemand,
				}
				if _, err := mdkmc.RunCoupled(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------- Figure 17: vacancy clustering ----------

func BenchmarkFig17VacancyClustering(b *testing.B) {
	cfg := kmc.DefaultConfig()
	cfg.Cells = [3]int{14, 14, 14}
	cfg.VacancyConcentration = 0.004
	var clustered float64
	for i := 0; i < b.N; i++ {
		res, err := mdkmc.RunKMC(cfg, 40, 0)
		if err != nil {
			b.Fatal(err)
		}
		clustered = res.Clusters.ClusteredFraction
	}
	b.ReportMetric(100*clustered, "clustered-%")
}

// ---------- Ablation benches (DESIGN.md §5) ----------

// BenchmarkAblationNeighborStructures contrasts the per-sweep cost of the
// three neighbor structures on identical configurations.
func BenchmarkAblationNeighborStructures(b *testing.B) {
	l := lattice.New(12, 12, 12, units.LatticeConstantFe)
	cutoff := 1.3 * units.LatticeConstantFe
	pos := make([]vec.V, l.NumSites())
	for i := range pos {
		pos[i] = l.Position(l.Coord(i))
	}
	b.Run("lattice-list", func(b *testing.B) {
		tab := l.NeighborOffsets(cutoff + 0.9)
		g, _ := lattice.NewGrid(l, 1, 1, 1)
		s := neighbor.NewStore(g.Box(0, tab.MaxCellReach()), tab, units.Fe)
		b.ResetTimer()
		for it := 0; it < b.N; it++ {
			var sum float64
			s.Box.EachOwned(func(c lattice.Coord, local int) {
				for _, d := range s.Deltas(c.B) {
					sum += s.R[local+int(d)].X
				}
			})
			_ = sum
		}
		b.ReportMetric(float64(s.MemoryBytes())/float64(l.NumSites()), "bytes/site")
	})
	b.Run("verlet-list", func(b *testing.B) {
		vl := neighbor.NewVerletList(l, cutoff, 0.3*units.LatticeConstantFe)
		vl.Build(pos)
		b.ResetTimer()
		for it := 0; it < b.N; it++ {
			if vl.NeedsRebuild(pos) {
				vl.Build(pos)
			}
			var sum float64
			for i := range pos {
				for _, j := range vl.Neighbors(i) {
					sum += pos[j].X
				}
			}
			_ = sum
		}
		b.ReportMetric(float64(vl.MemoryBytes())/float64(l.NumSites()), "bytes/site")
	})
	b.Run("linked-cell", func(b *testing.B) {
		lc := neighbor.NewLinkedCell(l, cutoff)
		b.ResetTimer()
		for it := 0; it < b.N; it++ {
			lc.Build(pos) // rebuilt every step, as the paper notes
			var sum float64
			for i := range pos {
				lc.EachNeighbor(i, func(j int32) { sum += pos[j].X })
			}
			_ = sum
		}
		b.ReportMetric(float64(lc.MemoryBytes())/float64(l.NumSites()), "bytes/site")
	})
}

// BenchmarkAblationRunawayLists contrasts O(N) chained run-away pairing with
// the O(N^2) flat-array scan of the earlier design the paper improves on.
func BenchmarkAblationRunawayLists(b *testing.B) {
	l := lattice.New(16, 16, 16, units.LatticeConstantFe)
	tab := l.NeighborOffsets(3.6 + md.WideMargin)
	g, _ := lattice.NewGrid(l, 1, 1, 1)
	const n = 300 // run-away atoms
	r := rng.New(5)
	b.Run("chained", func(b *testing.B) {
		s := neighbor.NewStore(g.Box(0, tab.MaxCellReach()), tab, units.Fe)
		var anchors []int
		for i := 0; i < n; i++ {
			c := l.Coord(r.Intn(l.NumSites()))
			local := s.Box.LocalIndex(c)
			p := l.Position(c).Add(vec.V{X: 0.8})
			s.AddRunaway(local, neighbor.Runaway{ID: int64(i + 1), R: p})
			anchors = append(anchors, local)
		}
		b.ResetTimer()
		for it := 0; it < b.N; it++ {
			// Pair search: for each run-away, scan chains around its anchor.
			pairs := 0
			for _, a := range anchors {
				c := s.Box.GlobalCoord(a)
				for _, d := range s.Deltas(c.B) {
					j := a + int(d)
					if s.Head[j] != neighbor.NoRunaway {
						s.EachRunaway(j, func(_ int32, _ *neighbor.Runaway) { pairs++ })
					}
				}
			}
			_ = pairs
		}
	})
	b.Run("flat-array", func(b *testing.B) {
		// The pre-paper design: all run-aways in one array, O(N^2) pairing.
		pos := make([]vec.V, n)
		for i := range pos {
			pos[i] = l.Position(l.Coord(r.Intn(l.NumSites())))
		}
		cut2 := 3.6 * 3.6
		b.ResetTimer()
		for it := 0; it < b.N; it++ {
			pairs := 0
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if i != j && l.MinImage(pos[i], pos[j]).Norm2() < cut2 {
						pairs++
					}
				}
			}
			_ = pairs
		}
	})
}

// BenchmarkAblationTableCompaction contrasts evaluation through the two
// table layouts (identical results; the compacted layout trades arithmetic
// for 7x less memory).
func BenchmarkAblationTableCompaction(b *testing.B) {
	pot := eam.NewFe(eam.Compacted, eam.TablePoints)
	for _, mode := range []eam.Mode{eam.Traditional, eam.Compacted} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			p := pot.WithMode(mode)
			compacted, traditional := p.TableBytes()
			r := 2.2
			for i := 0; i < b.N; i++ {
				_, _ = p.Pair(units.Fe, units.Fe, r)
				_, _ = p.Density(units.Fe, units.Fe, r)
				r += 1e-7
				if r > 3.3 {
					r = 2.2
				}
			}
			if mode == eam.Compacted {
				b.ReportMetric(float64(compacted), "table-bytes")
			} else {
				b.ReportMetric(float64(traditional), "table-bytes")
			}
		})
	}
}

// BenchmarkAblationOneSidedKMC isolates the message-count benefit of the
// one-sided window over two-sided probe messaging.
func BenchmarkAblationOneSidedKMC(b *testing.B) {
	for _, proto := range []kmc.Protocol{kmc.OnDemand, kmc.OnDemandOneSided} {
		proto := proto
		b.Run(proto.String(), func(b *testing.B) {
			cfg := kmc.DefaultConfig()
			cfg.Cells = [3]int{22, 11, 11}
			cfg.Grid = [3]int{2, 1, 1}
			cfg.VacancyConcentration = 2e-4
			cfg.Protocol = proto
			w := mpi.NewWorld(cfg.Ranks())
			var msgs int64
			w.Run(func(c *mpi.Comm) {
				st, err := kmc.NewState(cfg, c)
				if err != nil {
					b.Fatal(err)
				}
				base := st.Stats().MsgsSent
				if c.Rank() == 0 {
					b.ResetTimer()
				}
				c.Barrier()
				for i := 0; i < b.N; i++ {
					st.Cycle()
				}
				c.Barrier()
				if c.Rank() == 0 {
					b.StopTimer()
					msgs = st.Stats().MsgsSent - base
				}
			})
			b.ReportMetric(float64(msgs)/float64(b.N), "msgs/cycle")
		})
	}
}

func benchName(prefix string, n int) string {
	return prefix + "-" + string(rune('0'+n))
}

// BenchmarkAblationAlloyTables contrasts the two minority-table strategies
// of §2.1.2 on an Fe-25%Cu alloy: the adopted dominant-resident layout vs
// the rejected register-communication distribution.
func BenchmarkAblationAlloyTables(b *testing.B) {
	for _, strat := range []md.AlloyTableStrategy{
		md.AlloyDominantResident, md.AlloyDistributedTables,
	} {
		strat := strat
		b.Run(strat.String(), func(b *testing.B) {
			cfg := md.DefaultConfig()
			cfg.Cells = [3]int{12, 12, 12}
			cfg.CuFraction = 0.25
			cfg.Temperature = 600
			w := mpi.NewWorld(1)
			w.Run(func(c *mpi.Comm) {
				rank, err := md.NewRank(cfg, c)
				if err != nil {
					b.Fatal(err)
				}
				rank.Kernel = md.NewCPEKernel(rank.FF, md.VariantFull)
				rank.Kernel.Alloy = strat
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					rank.Step()
				}
				b.StopTimer()
				b.ReportMetric(rank.Kernel.StepTime/float64(b.N)*1e6, "virtual-us/step")
			})
		})
	}
}

// BenchmarkAblationLDMConfiguration contrasts the two LDM configurations of
// §2.1.2: the user-controlled buffer the paper adopts vs the
// software-emulated cache.
func BenchmarkAblationLDMConfiguration(b *testing.B) {
	for _, cache := range []bool{false, true} {
		name := "user-controlled-buffer"
		if cache {
			name = "software-emulated-cache"
		}
		cache := cache
		b.Run(name, func(b *testing.B) {
			cfg := md.DefaultConfig()
			cfg.Cells = [3]int{12, 12, 12}
			cfg.Temperature = 600
			w := mpi.NewWorld(1)
			w.Run(func(c *mpi.Comm) {
				rank, err := md.NewRank(cfg, c)
				if err != nil {
					b.Fatal(err)
				}
				rank.Kernel = md.NewCPEKernel(rank.FF, md.VariantFull)
				rank.Kernel.SoftwareCache = cache
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					rank.Step()
				}
				b.StopTimer()
				b.ReportMetric(rank.Kernel.StepTime/float64(b.N)*1e6, "virtual-us/step")
			})
		})
	}
}
