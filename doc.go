// Package mdkmc is a Go reproduction of "Massively Scaling the Metal
// Microscopic Damage Simulation on Sunway TaihuLight Supercomputer"
// (Shigang Li et al., ICPP 2018): a coupled Molecular Dynamics / Kinetic
// Monte Carlo simulation of irradiation damage in BCC iron, together with
// the systems the paper's scalability study depends on — a lattice
// neighbor list with run-away atom chains, compacted EAM interpolation
// tables, a simulated Sunway SW26010 many-core substrate with a 64 KB
// local store and virtual-clock DMA engine, an in-process MPI-like
// runtime, the semirigorous synchronous sublattice KMC with the paper's
// on-demand communication strategy, and calibrated scaling models that
// regenerate every figure of the paper's evaluation at machine scale.
//
// The package exposes the three top-level entry points a downstream user
// needs:
//
//	res, err := mdkmc.RunMD(mdkmc.DefaultMDConfig())      // cascade MD
//	res, err := mdkmc.RunKMC(mdkmc.DefaultKMCConfig())    // defect evolution
//	res, err := mdkmc.RunCoupled(mdkmc.CoupledConfig{...}) // the full pipeline
//
// Multi-process parallelism is simulated in-process: Config.Grid selects a
// 3-D domain decomposition and each subdomain runs on its own goroutine
// rank with explicit message passing, so the communication behaviour the
// paper optimizes is observable (and counted) on a laptop.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record of every reproduced figure.
package mdkmc
